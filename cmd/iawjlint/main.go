// Command iawjlint runs the repo-specific static analyzers over package
// directories and reports findings with file:line positions. It is the
// lint stage of the CI gate (scripts/check.sh): a non-zero exit means at
// least one finding survived the allowlists.
//
// Usage:
//
//	iawjlint [flags] [pattern ...]
//
// Patterns are directories; a trailing /... walks recursively (testdata,
// vendor, and hidden directories are skipped, mirroring the go tool).
// With no pattern, ./... is assumed.
//
// Flags:
//
//	-rules r1,r2       run only the named rules
//	-tests             also lint _test.go files
//	-list              print the available rules and exit
//	-explain RULE      print the rule's contract (what it proves, why, and
//	                   the sanctioned escape hatches) and exit
//	-json              emit findings as JSON (schema version 1)
//	-sarif             emit findings as SARIF 2.1.0
//	-baseline FILE     suppress findings recorded in FILE
//	-update-baseline   merge the current findings into FILE and exit 0
//
// Beyond the per-package analyzers, the driver runs the whole-program
// analyzers (lockorder, falseshare, guardinfer, atomicmix, goescape,
// maporder) over every resolved package at once, and the build-diagnostics
// gates (escapegate, bcegate, inlinegate) over the module: one shared
// `go build -gcflags="-m=2 -d=ssa/check_bce/debug=1"` run feeds all three,
// anchoring compiler escape, bounds-check, and inliner verdicts to
// //iawj:hotpath and //iawj:inline spans.
//
// Escape hatches: a `//lint:allow <rule> <reason>` comment on (or directly
// above) the offending line, or the per-rule path allowlist baked into
// internal/lint for sanctioned packages such as internal/clock. A baseline
// file is for staged adoption of new rules on large trees only — this
// repo's gate runs without one. -update-baseline merges: keys already in
// FILE survive even when the finding is currently absent (flaky or
// configuration-dependent findings stay suppressed), except that keys
// naming files which no longer exist are pruned. See LINTING.md for the
// rule catalogue.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the driver and returns the process exit code: 0 clean,
// 1 findings, 2 usage or load errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iawjlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule names to run (default: all)")
	tests := fs.Bool("tests", false, "also lint _test.go files")
	list := fs.Bool("list", false, "print the available rules and exit")
	explain := fs.String("explain", "", "print the named rule's contract and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	baseline := fs.String("baseline", "", "baseline file of accepted findings to suppress")
	updateBaseline := fs.Bool("update-baseline", false, "merge the current findings into the -baseline file and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, r := range lint.Catalogue() {
			fmt.Fprintf(stdout, "%-16s %s\n", r.Name, r.Doc)
		}
		return 0
	}
	if *explain != "" {
		text, ok := lint.Explain(*explain)
		if !ok {
			fmt.Fprintf(stderr, "iawjlint: unknown rule %q; available rules: %s\n",
				*explain, strings.Join(lint.RuleNames(), ", "))
			return 2
		}
		fmt.Fprintln(stdout, text)
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "iawjlint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *updateBaseline && *baseline == "" {
		fmt.Fprintln(stderr, "iawjlint: -update-baseline requires -baseline FILE")
		return 2
	}
	sel, err := selectRules(*rules)
	if err != nil {
		fmt.Fprintf(stderr, "iawjlint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "iawjlint: %v\n", err)
		return 2
	}
	root := moduleRoot(cwd)
	dirs, err := resolve(patterns, cwd)
	if err != nil {
		fmt.Fprintf(stderr, "iawjlint: %v\n", err)
		return 2
	}

	var pkgs []*lint.Package
	var findings []lint.Finding
	runner := &lint.Runner{Analyzers: sel.pkg}
	for _, dir := range dirs {
		pkg, err := lint.Load(dir, root, *tests)
		if err != nil {
			fmt.Fprintf(stderr, "iawjlint: %v\n", err)
			return 2
		}
		if pkg == nil {
			continue
		}
		pkgs = append(pkgs, pkg)
		if len(sel.pkg) > 0 {
			findings = append(findings, runner.Check(pkg)...)
		}
	}
	prog := lint.NewProgram(pkgs)
	if len(sel.prog) > 0 {
		pr := &lint.Runner{ProgramAnalyzers: sel.prog}
		findings = append(findings, pr.CheckProgram(prog)...)
	}
	if sel.escape || sel.bce || sel.inline {
		// One -gcflags diagnostics build serves all three gates.
		diag := lint.NewBuildDiag(root, "")
		type gate interface {
			CheckDiag(*lint.BuildDiag, *lint.Program, map[string][]string) ([]lint.Finding, error)
		}
		var gates []gate
		if sel.escape {
			gates = append(gates, lint.EscapeGate{})
		}
		if sel.bce {
			gates = append(gates, lint.BCEGate{})
		}
		if sel.inline {
			gates = append(gates, lint.InlineGate{})
		}
		for _, g := range gates {
			fs, err := g.CheckDiag(diag, prog, nil)
			if err != nil {
				fmt.Fprintf(stderr, "iawjlint: %v\n", err)
				return 2
			}
			findings = append(findings, fs...)
		}
	}
	lint.SortFindings(findings)

	if *baseline != "" && !*updateBaseline {
		known, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "iawjlint: %v\n", err)
			return 2
		}
		var kept []lint.Finding
		for _, f := range findings {
			if !known[baselineKey(root, f)] {
				kept = append(kept, f)
			}
		}
		findings = kept
	}
	if *updateBaseline {
		if err := writeBaseline(*baseline, root, findings); err != nil {
			fmt.Fprintf(stderr, "iawjlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "iawjlint: baselined %d finding(s) to %s\n", len(findings), *baseline)
		return 0
	}

	switch {
	case *jsonOut:
		writeJSON(stdout, cwd, findings)
	case *sarifOut:
		writeSARIF(stdout, cwd, findings)
	default:
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]: %s\n",
				relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Sev, f.Rule, f.Msg)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "iawjlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selection is the resolved -rules flag: which per-package analyzers,
// which whole-program analyzers, and which of the build-diagnostics gates
// run.
type selection struct {
	pkg    []lint.Analyzer
	prog   []lint.ProgramAnalyzer
	escape bool
	bce    bool
	inline bool
}

// selectRules filters the full catalogue by the -rules flag. An unknown
// name is a usage error and carries the catalogue so the caller does not
// have to run -list separately.
func selectRules(rules string) (selection, error) {
	if rules == "" {
		return selection{pkg: lint.All(), prog: lint.AllProgram(), escape: true, bce: true, inline: true}, nil
	}
	byName := map[string]lint.Analyzer{}
	for _, a := range lint.All() {
		byName[a.Name()] = a
	}
	progByName := map[string]lint.ProgramAnalyzer{}
	for _, a := range lint.AllProgram() {
		progByName[a.Name()] = a
	}
	var sel selection
	seen := map[string]bool{}
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		if seen[name] {
			continue
		}
		seen[name] = true
		switch {
		case byName[name] != nil:
			sel.pkg = append(sel.pkg, byName[name])
		case progByName[name] != nil:
			sel.prog = append(sel.prog, progByName[name])
		case name == (lint.EscapeGate{}).Name():
			sel.escape = true
		case name == (lint.BCEGate{}).Name():
			sel.bce = true
		case name == (lint.InlineGate{}).Name():
			sel.inline = true
		default:
			return selection{}, fmt.Errorf("unknown rule %q; available rules: %s",
				name, strings.Join(lint.RuleNames(), ", "))
		}
	}
	return sel, nil
}

// jsonFinding is the machine-readable schema, pinned by the golden test.
type jsonFinding struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the -json document: schema version, findings, count.
type jsonReport struct {
	Version  int           `json:"version"`
	Findings []jsonFinding `json:"findings"`
	Count    int           `json:"count"`
}

func writeJSON(w io.Writer, cwd string, findings []lint.Finding) {
	rep := jsonReport{Version: 1, Findings: []jsonFinding{}, Count: len(findings)}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			Rule:     f.Rule,
			Severity: f.Sev.String(),
			File:     relPath(cwd, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// SARIF 2.1.0 subset: one run, the rule catalogue as reportingDescriptors,
// one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, cwd string, findings []lint.Finding) {
	var rules []sarifRule
	for _, r := range lint.Catalogue() {
		rules = append(rules, sarifRule{ID: r.Name, ShortDescription: sarifText{Text: r.Doc}})
	}
	results := []sarifResult{}
	for _, f := range findings {
		level := "warning"
		if f.Sev == lint.Error {
			level = "error"
		}
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   level,
			Message: sarifText{Text: f.Msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relPath(cwd, f.Pos.Filename)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "iawjlint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(log)
}

// baselineKey identifies a finding across line drift: rule, file, and
// message, but not position. The file component is rendered relative to
// the module root — not the invocation directory — so a baseline written
// from one cwd suppresses the same findings from any other and never
// embeds absolute or ../ paths.
func baselineKey(root string, f lint.Finding) string {
	return f.Rule + "\t" + relPath(root, f.Pos.Filename) + "\t" + f.Msg
}

// readBaseline loads the accepted-finding keys, one per line.
func readBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	keys := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		keys[line] = true
	}
	return keys, sc.Err()
}

// writeBaseline merges the current findings' keys into the baseline at
// path: existing keys survive even when the finding is currently absent
// (so a baseline accumulated across configurations keeps suppressing
// findings that only fire under some of them) — except keys whose file no
// longer exists under root, which are pruned as dead weight. The result is
// written sorted and deduped.
func writeBaseline(path, root string, findings []lint.Finding) error {
	seen := map[string]bool{}
	if existing, err := readBaseline(path); err == nil {
		for k := range existing {
			seen[k] = true
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for _, f := range findings {
		seen[baselineKey(root, f)] = true
	}
	var keys []string
	for k := range seen {
		if file := baselineKeyFile(k); file != "" {
			if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(file))); err != nil {
				continue // the file is gone; its accepted findings are too
			}
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# iawjlint baseline: rule<TAB>module-relative file<TAB>message, one accepted finding per line.\n")
	for _, k := range keys {
		b.WriteString(k + "\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// baselineKeyFile extracts the module-relative file component of a
// baseline key, or "" for malformed lines (kept as-is rather than judged).
func baselineKeyFile(key string) string {
	parts := strings.SplitN(key, "\t", 3)
	if len(parts) != 3 {
		return ""
	}
	return parts[1]
}

// resolve expands patterns into package directories.
func resolve(patterns []string, cwd string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				pat = cwd
			}
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(cwd, pat)
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", pat)
		}
		if recursive {
			walked, err := lint.Walk(pat)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		} else {
			add(pat)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// moduleRoot walks up from dir to the directory containing go.mod,
// falling back to dir itself.
func moduleRoot(dir string) string {
	d := dir
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// relPath renders a path relative to the working directory when possible,
// keeping driver output stable across checkouts.
func relPath(cwd, path string) string {
	rel, err := filepath.Rel(cwd, path)
	if err != nil {
		return path
	}
	return filepath.ToSlash(rel)
}
