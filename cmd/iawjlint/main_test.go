package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from current output")

const fixture = "../../internal/lint/testdata/src/fixture"

// TestGolden pins the CLI surface: running the driver over the seeded
// fixture package must produce byte-identical diagnostics and exit 1.
func TestGolden(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{fixture}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errs.String())
	}
	if *update {
		if err := os.WriteFile("testdata/golden.txt", out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("output differs from golden (re-run with -update after reviewing):\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
	if !strings.Contains(errs.String(), "finding(s)") {
		t.Errorf("stderr summary missing, got %q", errs.String())
	}
}

// TestEachRuleTripsNonZero is the acceptance criterion: every rule, run
// alone, must exit non-zero on its seeded fixture violation. escapegate
// is absent because its positive control lives outside the fixture
// package (internal/lint's TestEscapeGateFixture builds escfixture with
// -m=2); `go build ./...` never compiles testdata.
func TestEachRuleTripsNonZero(t *testing.T) {
	for _, rule := range []string{"determinism", "lockdiscipline", "goroutineleak", "hotpathalloc", "panicpolicy", "tracering", "lockorder", "falseshare", "guardinfer", "atomicmix", "goescape", "maporder"} {
		t.Run(rule, func(t *testing.T) {
			var out, errs bytes.Buffer
			code := run([]string{"-rules", rule, fixture}, &out, &errs)
			if code != 1 {
				t.Errorf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errs.String())
			}
			if !strings.Contains(out.String(), "["+rule+"]") {
				t.Errorf("no %s finding in output:\n%s", rule, out.String())
			}
		})
	}
}

// TestRepoTreeExitsZero is the other acceptance criterion: the real tree
// (testdata excluded by the walk) must lint clean.
func TestRepoTreeExitsZero(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"../../..."}, &out, &errs); code != 0 {
		t.Errorf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errs.String())
	}
}

// TestUnknownRule rejects typos instead of silently linting nothing, and
// must name the available rules so the caller need not run -list.
func TestUnknownRule(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule", fixture}, &out, &errs); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errs.String(), "unknown rule") {
		t.Errorf("stderr = %q, want unknown-rule error", errs.String())
	}
	for _, rule := range []string{"determinism", "hotpathalloc", "lockorder", "falseshare", "guardinfer", "atomicmix", "goescape", "maporder", "escapegate", "bcegate", "inlinegate"} {
		if !strings.Contains(errs.String(), rule) {
			t.Errorf("unknown-rule error does not list %s: %q", rule, errs.String())
		}
	}
}

// TestListRules keeps -list in sync with the registry.
func TestListRules(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, rule := range []string{"determinism", "lockdiscipline", "goroutineleak", "hotpathalloc", "panicpolicy", "tracering", "lockorder", "falseshare", "guardinfer", "atomicmix", "goescape", "maporder", "escapegate", "bcegate", "inlinegate"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, out.String())
		}
	}
}

// TestExplain pins the -explain surface: a known rule prints its contract
// (golden, reviewed like any diagnostic text) and exits 0; an unknown rule
// is a usage error that names the catalogue, like -rules.
func TestExplain(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-explain", "maporder"}, &out, &errs); code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errs.String())
	}
	if *update {
		if err := os.WriteFile("testdata/explain_maporder.txt", out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		golden, err := os.ReadFile("testdata/explain_maporder.txt")
		if err != nil {
			t.Fatal(err)
		}
		if out.String() != string(golden) {
			t.Errorf("-explain output differs from golden (re-run with -update after reviewing):\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
		}
	}
	// Every catalogued rule must explain itself — a rule without a
	// contract paragraph is a rule reviewers cannot apply allows against.
	for _, rule := range []string{"bcegate", "inlinegate", "escapegate", "hotpathalloc"} {
		out.Reset()
		errs.Reset()
		if code := run([]string{"-explain", rule}, &out, &errs); code != 0 {
			t.Errorf("-explain %s exit = %d, want 0", rule, code)
		}
		if !strings.Contains(out.String(), rule+":") || len(out.String()) < 100 {
			t.Errorf("-explain %s output lacks the contract paragraph:\n%s", rule, out.String())
		}
	}
	out.Reset()
	errs.Reset()
	if code := run([]string{"-explain", "nosuchrule"}, &out, &errs); code != 2 {
		t.Errorf("-explain nosuchrule exit = %d, want 2", code)
	}
	if !strings.Contains(errs.String(), "unknown rule") || !strings.Contains(errs.String(), "bcegate") {
		t.Errorf("unknown-rule error must name the catalogue, got %q", errs.String())
	}
}

// TestGoldenJSON pins the -json schema: byte-identical document over the
// fixture package, exit 1 because findings remain findings in any format.
func TestGoldenJSON(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-json", fixture}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errs.String())
	}
	if *update {
		if err := os.WriteFile("testdata/golden.json", out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile("testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("JSON output differs from golden (re-run with -update after reviewing):\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
	var doc struct {
		Version  int `json:"version"`
		Findings []struct {
			Rule    string `json:"rule"`
			File    string `json:"file"`
			Line    int    `json:"line"`
			Message string `json:"message"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Version != 1 || doc.Count != len(doc.Findings) || doc.Count == 0 {
		t.Errorf("schema invariants violated: version=%d count=%d findings=%d", doc.Version, doc.Count, len(doc.Findings))
	}
}

// TestSARIF validates the -sarif document against the SARIF 2.1.0
// required properties: version, a $schema URI, one run with
// tool.driver.{name,rules}, and results each carrying ruleId, level,
// message.text, and a positioned physical location whose ruleId resolves
// in the driver's rule catalogue.
func TestSARIF(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-sarif", fixture}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errs.String())
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v", err)
	}
	if !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema URI", doc.Schema)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 with one run", doc.Version, len(doc.Runs))
	}
	run0 := doc.Runs[0]
	if run0.Tool.Driver.Name != "iawjlint" || len(run0.Tool.Driver.Rules) != 15 {
		t.Errorf("driver %q with %d rules, want iawjlint with the 15-rule catalogue", run0.Tool.Driver.Name, len(run0.Tool.Driver.Rules))
	}
	ruleIDs := map[string]bool{}
	for _, r := range run0.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v lacks id or shortDescription.text", r)
		}
		ruleIDs[r.ID] = true
	}
	for _, rule := range []string{"guardinfer", "atomicmix", "goescape", "maporder", "bcegate", "inlinegate"} {
		if !ruleIDs[rule] {
			t.Errorf("driver rules missing %s", rule)
		}
	}
	if len(run0.Results) == 0 {
		t.Error("no results for the seeded fixture")
	}
	for _, r := range run0.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("result ruleId %q not in the driver catalogue", r.RuleID)
		}
		if r.Level != "error" && r.Level != "warning" {
			t.Errorf("result %s has level %q, want error or warning", r.RuleID, r.Level)
		}
		if r.Message.Text == "" {
			t.Errorf("result %s lacks message.text", r.RuleID)
		}
		if len(r.Locations) != 1 ||
			r.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" ||
			r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result %s lacks a positioned location", r.RuleID)
		}
	}
}

// TestJSONSarifExclusive: one machine-readable format at a time.
func TestJSONSarifExclusive(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-json", "-sarif", fixture}, &out, &errs); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}

// TestBaselineRoundTrip exercises staged adoption: -update-baseline
// records every fixture finding, and a rerun with -baseline suppresses
// exactly those, exiting 0.
func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.txt")
	var out, errs bytes.Buffer
	if code := run([]string{"-baseline", base, "-update-baseline", fixture}, &out, &errs); code != 0 {
		t.Fatalf("update-baseline exit = %d, want 0 (stderr: %s)", code, errs.String())
	}
	out.Reset()
	errs.Reset()
	if code := run([]string{"-baseline", base, fixture}, &out, &errs); code != 0 {
		t.Errorf("baselined run exit = %d, want 0\nstdout: %s", code, out.String())
	}
	// Baseline keys are module-root relative: no absolute paths and no
	// ../ segments, whatever directory the driver ran from.
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	sawKey := false
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sawKey = true
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			t.Fatalf("baseline line is not rule<TAB>file<TAB>message: %q", line)
		}
		if filepath.IsAbs(parts[1]) || strings.Contains(parts[1], "..") {
			t.Errorf("baseline key embeds a non-portable path %q; want module-root relative", parts[1])
		}
		if !strings.HasPrefix(parts[1], "internal/lint/testdata/") {
			t.Errorf("baseline key path %q is not module-root relative", parts[1])
		}
	}
	if !sawKey {
		t.Fatal("baseline recorded no keys")
	}
	// The same baseline must suppress the same findings from another
	// working directory.
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(cwd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	out.Reset()
	errs.Reset()
	if code := run([]string{"-baseline", base, "internal/lint/testdata/src/fixture"}, &out, &errs); code != 0 {
		t.Errorf("baselined run from module root exit = %d, want 0\nstdout: %s", code, out.String())
	}
	if err := os.Chdir(cwd); err != nil {
		t.Fatal(err)
	}
	// A baseline for one rule must not swallow the others.
	if err := os.WriteFile(base, []byte("# only tracering accepted\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errs.Reset()
	if code := run([]string{"-baseline", base, fixture}, &out, &errs); code != 1 {
		t.Errorf("near-empty baseline exit = %d, want 1", code)
	}
}

// TestUpdateBaselineMergesAndPrunes pins the -update-baseline semantics:
// keys already in the file survive the rewrite even when the finding is
// currently absent (merge, not overwrite — a baseline accumulated across
// configurations keeps suppressing findings that only fire under some),
// while keys naming files that no longer exist are pruned.
func TestUpdateBaselineMergesAndPrunes(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.txt")
	// Seed the baseline with one key for a real file whose finding is not
	// in the current run, and one key for a file that does not exist.
	surviving := "notarule\tinternal/lint/lint.go\tmanually accepted finding that no current run produces"
	pruned := "notarule\tinternal/gone/deleted.go\tfinding in a deleted file"
	if err := os.WriteFile(base, []byte("# seeded\n"+surviving+"\n"+pruned+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errs bytes.Buffer
	if code := run([]string{"-baseline", base, "-update-baseline", fixture}, &out, &errs); code != 0 {
		t.Fatalf("update-baseline exit = %d, want 0 (stderr: %s)", code, errs.String())
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw)
	if !strings.Contains(got, surviving) {
		t.Errorf("merge dropped a pre-existing key for a live file:\n%s", got)
	}
	if strings.Contains(got, pruned) {
		t.Errorf("rewrite kept a key for a deleted file:\n%s", got)
	}
	if !strings.Contains(got, "hotpathalloc\t") {
		t.Errorf("rewrite did not record the current fixture findings:\n%s", got)
	}
	// Round trip: the merged baseline still suppresses the fixture.
	out.Reset()
	errs.Reset()
	if code := run([]string{"-baseline", base, fixture}, &out, &errs); code != 0 {
		t.Errorf("merged baseline run exit = %d, want 0\nstdout: %s", code, out.String())
	}
	// A second update must be idempotent modulo the prune: same keys.
	if code := run([]string{"-baseline", base, "-update-baseline", fixture}, &out, &errs); code != 0 {
		t.Fatalf("second update-baseline exit = %d, want 0", code)
	}
	raw2, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw2) != got {
		t.Errorf("second -update-baseline was not idempotent:\n--- first ---\n%s--- second ---\n%s", got, raw2)
	}
}

// TestUpdateBaselineRequiresPath: -update-baseline without -baseline is a
// usage error.
func TestUpdateBaselineRequiresPath(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-update-baseline", fixture}, &out, &errs); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}
