package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata/golden.txt from current output")

const fixture = "../../internal/lint/testdata/src/fixture"

// TestGolden pins the CLI surface: running the driver over the seeded
// fixture package must produce byte-identical diagnostics and exit 1.
func TestGolden(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{fixture}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errs.String())
	}
	if *update {
		if err := os.WriteFile("testdata/golden.txt", out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden, err := os.ReadFile("testdata/golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("output differs from golden (re-run with -update after reviewing):\n--- got ---\n%s--- want ---\n%s", out.String(), golden)
	}
	if !strings.Contains(errs.String(), "finding(s)") {
		t.Errorf("stderr summary missing, got %q", errs.String())
	}
}

// TestEachRuleTripsNonZero is the acceptance criterion: every rule, run
// alone, must exit non-zero on its seeded fixture violation.
func TestEachRuleTripsNonZero(t *testing.T) {
	for _, rule := range []string{"determinism", "lockdiscipline", "goroutineleak", "hotpathalloc", "panicpolicy", "tracering"} {
		t.Run(rule, func(t *testing.T) {
			var out, errs bytes.Buffer
			code := run([]string{"-rules", rule, fixture}, &out, &errs)
			if code != 1 {
				t.Errorf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errs.String())
			}
			if !strings.Contains(out.String(), "["+rule+"]") {
				t.Errorf("no %s finding in output:\n%s", rule, out.String())
			}
		})
	}
}

// TestRepoTreeExitsZero is the other acceptance criterion: the real tree
// (testdata excluded by the walk) must lint clean.
func TestRepoTreeExitsZero(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"../../..."}, &out, &errs); code != 0 {
		t.Errorf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errs.String())
	}
}

// TestUnknownRule rejects typos instead of silently linting nothing.
func TestUnknownRule(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-rules", "nosuchrule", fixture}, &out, &errs); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errs.String(), "unknown rule") {
		t.Errorf("stderr = %q, want unknown-rule error", errs.String())
	}
}

// TestListRules keeps -list in sync with the registry.
func TestListRules(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, rule := range []string{"determinism", "lockdiscipline", "goroutineleak", "hotpathalloc", "panicpolicy", "tracering"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, out.String())
		}
	}
}
