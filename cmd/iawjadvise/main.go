// Command iawjadvise walks the paper's decision tree (Figure 4): given
// workload characteristics and an optimization objective it recommends an
// intra-window-join algorithm, and can immediately validate the advice by
// running all algorithms on a matching synthetic workload.
//
// Usage:
//
//	iawjadvise -rater 1600 -rates 25600 -dupe 1 -objective latency
//	iawjadvise -rater 12800 -rates 12800 -dupe 100 -validate
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	iawj "repro"
)

func main() {
	var (
		rateR    = flag.Float64("rater", 1600, "arrival rate of R (tuples/ms; -1 = at rest)")
		rateS    = flag.Float64("rates", 1600, "arrival rate of S (tuples/ms; -1 = at rest)")
		dupe     = flag.Float64("dupe", 1, "average duplicates per key")
		keySkew  = flag.Float64("keyskew", 0, "Zipf factor of keys")
		tuples   = flag.Int("tuples", 1<<21, "total tuples in the window")
		cores    = flag.Int("cores", runtime.GOMAXPROCS(0), "available cores")
		obj      = flag.String("objective", "throughput", "throughput | latency | progressiveness")
		validate = flag.Bool("validate", false, "run all algorithms on a matching Micro workload")
		window   = flag.Int64("window", 100, "validation window length (ms)")
	)
	flag.Parse()

	p := iawj.Profile{
		RateR: *rateR, RateS: *rateS,
		Dupe: *dupe, KeySkew: *keySkew,
		Tuples: *tuples, Cores: *cores,
	}
	if p.RateR < 0 {
		p.RateR = iawj.RateInfinite
	}
	if p.RateS < 0 {
		p.RateS = iawj.RateInfinite
	}
	switch *obj {
	case "throughput":
		p.Objective = iawj.OptThroughput
	case "latency":
		p.Objective = iawj.OptLatency
	case "progressiveness":
		p.Objective = iawj.OptProgressiveness
	default:
		fmt.Fprintf(os.Stderr, "iawjadvise: unknown objective %q\n", *obj)
		os.Exit(2)
	}

	adv := iawj.Advise(p)
	fmt.Printf("recommended: %s\n", adv.Algorithm)
	for _, step := range adv.Path {
		fmt.Printf("  - %s\n", step)
	}

	if !*validate {
		return
	}
	fmt.Println("\nvalidation on a matching Micro workload:")
	w := iawj.Micro(iawj.MicroConfig{
		RateR:    clampRate(p.RateR),
		RateS:    clampRate(p.RateS),
		WindowMs: *window,
		Dupe:     int(*dupe),
		KeySkew:  *keySkew,
		Seed:     42,
	})
	fmt.Printf("%-8s %14s %14s %10s\n", "algo", "tput(t/ms)", "p95 lat(ms)", "t50%(ms)")
	best := ""
	var bestScore float64
	for _, name := range iawj.Algorithms() {
		res, err := iawj.JoinWorkload(w, iawj.Config{Algorithm: name, Threads: *cores, SIMD: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			continue
		}
		score := score(res, p.Objective)
		if best == "" || score > bestScore {
			best, bestScore = name, score
		}
		marker := "  "
		if name == adv.Algorithm {
			marker = "<-"
		}
		fmt.Printf("%-8s %14.1f %14d %10d %s\n",
			name, res.ThroughputTPM, res.LatencyP95Ms, res.TimeToFrac(0.5), marker)
	}
	fmt.Printf("measured best for %s: %s\n", p.Objective, best)
}

func clampRate(r float64) int {
	if r >= iawj.RateInfinite {
		return 25600
	}
	return int(r)
}

func score(res iawj.Result, obj iawj.Objective) float64 {
	switch obj {
	case iawj.OptLatency:
		return -float64(res.LatencyP95Ms)
	case iawj.OptProgressiveness:
		return -float64(res.TimeToFrac(0.5))
	default:
		return res.ThroughputTPM
	}
}
