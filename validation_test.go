package iawj

import "testing"

func TestJoinRejectsUnsortedStreamingInput(t *testing.T) {
	r := Relation{{TS: 10, Key: 1}, {TS: 0, Key: 1}}
	s := Relation{{TS: 0, Key: 1}}
	if _, err := Join(r, s, Config{Algorithm: "SHJ_JM", Threads: 1, WindowMs: 20}); err == nil {
		t.Fatal("unsorted streaming input must be rejected")
	}
	// At rest, order does not matter: no gating happens.
	if _, err := Join(r, s, Config{Algorithm: "SHJ_JM", Threads: 1, AtRest: true}); err != nil {
		t.Fatalf("at-rest input must not require order: %v", err)
	}
}

// TestProfileWorkloadYSBRegression guards a decision-tree bug: YSB's
// at-rest campaigns table (all timestamps zero) computed a finite "rate"
// of count-per-1ms that happened to hit the low-rate branch and
// recommended an eager join for a throughput-bound workload.
func TestProfileWorkloadYSBRegression(t *testing.T) {
	w := YSB(0.02, 3)
	p := ProfileWorkload(w, 4, OptThroughput)
	if p.RateR != RateInfinite {
		t.Fatalf("at-rest side must profile as infinite rate, got %f", p.RateR)
	}
	adv := Advise(p)
	for _, eager := range EagerAlgorithms() {
		if adv.Algorithm == eager {
			t.Fatalf("throughput-bound YSB must not recommend an eager join, got %s", adv.Algorithm)
		}
	}
	// Duplication is profiled as the minimum across streams: YSB's
	// unique-key campaigns table keeps the hash-lazy branch in play.
	if p.Dupe != 1 {
		t.Fatalf("profile dupe = %f, want min across streams (1)", p.Dupe)
	}
}

func TestJoinWorkloadInheritsAtRest(t *testing.T) {
	w := MicroStatic(200, 200, 2, 0, 7)
	res, err := JoinWorkload(w, Config{Algorithm: "NPJ", Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != ExpectedMatches(w.R, w.S) {
		t.Fatalf("matches = %d", res.Matches)
	}
	// A static workload must not spend time in the wait phase.
	if res.PhaseNs[0] > 0 {
		t.Fatalf("at-rest run recorded wait time: %d ns", res.PhaseNs[0])
	}
}

func TestSummarizeReexport(t *testing.T) {
	w := Micro(MicroConfig{RateR: 10, RateS: 10, WindowMs: 50, Dupe: 5, Seed: 3})
	st := Summarize(w.R)
	if st.Tuples != len(w.R) || st.Dupe < 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdaptivePrefixBounds(t *testing.T) {
	big := make(Relation, adaptiveSample*3)
	if got := prefix(big, adaptiveSample); len(got) != adaptiveSample {
		t.Fatalf("prefix len = %d", len(got))
	}
	small := make(Relation, 10)
	if got := prefix(small, adaptiveSample); len(got) != 10 {
		t.Fatalf("short prefix len = %d", len(got))
	}
}
