package iawj

import (
	"fmt"
	"testing"
)

// allAlgorithms covers the eight studied algorithms.
var allAlgorithms = Algorithms()

// smallWorkload builds a deterministic micro workload with enough key
// collisions to exercise duplicate handling.
func smallWorkload(t testing.TB) Workload {
	t.Helper()
	return Micro(MicroConfig{RateR: 8, RateS: 8, WindowMs: 200, Dupe: 4, Seed: 7})
}

func TestAllAlgorithmsMatchGroundTruth(t *testing.T) {
	w := smallWorkload(t)
	want := ExpectedMatches(w.R, w.S)
	if want == 0 {
		t.Fatalf("degenerate workload: no matches expected")
	}
	for _, name := range allAlgorithms {
		for _, threads := range []int{1, 2, 4} {
			name, threads := name, threads
			t.Run(fmt.Sprintf("%s/threads=%d", name, threads), func(t *testing.T) {
				t.Parallel()
				res, err := Join(w.R, w.S, Config{
					Algorithm:  name,
					Threads:    threads,
					WindowMs:   w.WindowMs,
					NsPerSimMs: 1000, // fast simulation: 1 sim-ms = 1µs
				})
				if err != nil {
					t.Fatalf("Join: %v", err)
				}
				if res.Matches != want {
					t.Fatalf("matches = %d, want %d", res.Matches, want)
				}
			})
		}
	}
}

func TestAllAlgorithmsAtRest(t *testing.T) {
	w := MicroStatic(4000, 4000, 8, 0, 21)
	want := ExpectedMatches(w.R, w.S)
	for _, name := range allAlgorithms {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := Join(w.R, w.S, Config{Algorithm: name, Threads: 4, AtRest: true})
			if err != nil {
				t.Fatalf("Join: %v", err)
			}
			if res.Matches != want {
				t.Fatalf("matches = %d, want %d", res.Matches, want)
			}
		})
	}
}

func TestHandshakeBaselineMatches(t *testing.T) {
	w := MicroStatic(500, 500, 4, 0, 3)
	want := ExpectedMatches(w.R, w.S)
	res, err := Join(w.R, w.S, Config{Algorithm: "HANDSHAKE", Threads: 4, AtRest: true})
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if res.Matches != want {
		t.Fatalf("matches = %d, want %d", res.Matches, want)
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	_, err := Join(nil, nil, Config{Algorithm: "NOPE"})
	if err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestEmitMaterializesResults(t *testing.T) {
	w := MicroStatic(300, 300, 3, 0, 5)
	want := ExpectedMatches(w.R, w.S)
	for _, name := range []string{"NPJ", "MPASS", "SHJ_JM", "PMJ_JB"} {
		name := name
		t.Run(name, func(t *testing.T) {
			col := NewCollectResults()
			res, err := Join(w.R, w.S, Config{Algorithm: name, Threads: 2, AtRest: true, Emit: col.Emit})
			if err != nil {
				t.Fatalf("Join: %v", err)
			}
			got := col.Results()
			if int64(len(got)) != want || res.Matches != want {
				t.Fatalf("materialized %d, counted %d, want %d", len(got), res.Matches, want)
			}
			for _, jr := range got[:min(10, len(got))] {
				if jr.TS < 0 {
					t.Fatalf("bad result timestamp: %+v", jr)
				}
			}
		})
	}
}

// TestEmitOutputsIdenticalAcrossAlgorithms cross-checks that two very
// different implementations (shared-hash lazy vs sort-based eager)
// materialize exactly the same result multiset.
func TestEmitOutputsIdenticalAcrossAlgorithms(t *testing.T) {
	w := MicroStatic(400, 400, 5, 0.4, 11)
	ref := NewCollectResults()
	if _, err := Join(w.R, w.S, Config{Algorithm: "NPJ", Threads: 2, AtRest: true, Emit: ref.Emit}); err != nil {
		t.Fatal(err)
	}
	refOut := ref.Results()
	for _, name := range []string{"PRJ", "MWAY", "SHJ_JB", "PMJ_JM"} {
		col := NewCollectResults()
		if _, err := Join(w.R, w.S, Config{Algorithm: name, Threads: 3, AtRest: true, Emit: col.Emit}); err != nil {
			t.Fatal(err)
		}
		got := col.Results()
		if len(got) != len(refOut) {
			t.Fatalf("%s: %d results, want %d", name, len(got), len(refOut))
		}
		for i := range got {
			if got[i] != refOut[i] {
				t.Fatalf("%s: result %d = %+v, want %+v", name, i, got[i], refOut[i])
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLockFreeNPJAblation(t *testing.T) {
	w := MicroStatic(4000, 4000, 16, 0.5, 99)
	want := ExpectedMatches(w.R, w.S)
	for _, algo := range []string{"NPJ", "NPJ_LF"} {
		res, err := Join(w.R, w.S, Config{Algorithm: algo, Threads: 4, AtRest: true})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Matches != want {
			t.Fatalf("%s: matches = %d, want %d", algo, res.Matches, want)
		}
	}
}
