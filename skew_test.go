package iawj

import "testing"

// TestSkew2Equality is a regression test for two subtleties found while
// reproducing Figure 13: (i) every algorithm must agree under extreme key
// skew, and (ii) hot keys are skewed per stream but scrambled with
// per-stream seeds, so the hot keys of R and S do not coincide and the
// match count stays bounded — consistent with the paper's flat throughput
// curves at skew 2.0. (It also guards the O(1) head-insertion of the
// bucket-chain tables: chain-walking inserts made this quadratic.)
func TestSkew2Equality(t *testing.T) {
	w := Micro(MicroConfig{RateR: 500, RateS: 500, WindowMs: 20, Dupe: 4, KeySkew: 2.0, Seed: 42})
	want := ExpectedMatches(w.R, w.S)
	t.Logf("n=%d expected=%d", len(w.R), want)
	for _, name := range Algorithms() {
		res, err := Join(w.R, w.S, Config{Algorithm: name, Threads: 2, AtRest: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want {
			t.Errorf("%s: %d want %d", name, res.Matches, want)
		}
	}
}
