package iawj

import "repro/internal/core"

// Profile describes a workload for the decision tree (Figure 4).
type Profile = core.Profile

// Advice is the decision tree's recommendation plus the path taken.
type Advice = core.Advice

// Thresholds calibrates the tree's qualitative labels to a machine.
type Thresholds = core.Thresholds

// Objective selects the metric an application optimizes.
type Objective = core.Objective

// The three optimization objectives of Section 4.1.
const (
	OptThroughput      = core.OptThroughput
	OptLatency         = core.OptLatency
	OptProgressiveness = core.OptProgressiveness
)

// RateInfinite marks a static (at rest) input stream in a Profile.
const RateInfinite = core.RateInfinite

// Advise walks the paper's decision tree with the default thresholds.
func Advise(p Profile) Advice { return core.Advise(p, core.DefaultThresholds()) }

// AdviseWith walks the tree with custom thresholds.
func AdviseWith(p Profile, th Thresholds) Advice { return core.Advise(p, th) }

// DefaultThresholds returns the calibration used throughout the repo.
func DefaultThresholds() Thresholds { return core.DefaultThresholds() }

// ProfileWorkload derives a decision-tree Profile from a generated
// workload's statistics.
func ProfileWorkload(w Workload, cores int, obj Objective) Profile {
	rs := Summarize(w.R)
	ss := Summarize(w.S)
	// Sort-based algorithms pay off when duplication is high in BOTH
	// streams (Rovio, DEBS in the paper); a single high-dupe side (YSB's
	// ad stream) still favors hash joins, so profile the minimum.
	p := Profile{
		Dupe:      minF(rs.Dupe, ss.Dupe),
		KeySkew:   maxF(rs.KeySkew, ss.KeySkew),
		Tuples:    rs.Tuples + ss.Tuples,
		Cores:     cores,
		Objective: obj,
	}
	if w.AtRest {
		p.RateR, p.RateS = RateInfinite, RateInfinite
	} else {
		p.RateR, p.RateS = rs.Rate, ss.Rate
		// A side whose tuples all carry timestamp zero is itself at
		// rest (e.g. YSB's campaigns table): its arrival rate is
		// infinite, not count-over-1ms.
		if len(w.R) > 1 && w.R.MaxTS() == 0 {
			p.RateR = RateInfinite
		}
		if len(w.S) > 1 && w.S.MaxTS() == 0 {
			p.RateS = RateInfinite
		}
	}
	return p
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
