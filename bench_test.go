package iawj

// This file is the benchmark harness required by the study: one testing.B
// benchmark per table and figure of the evaluation section, each executing
// the exp package's regeneration of that experiment at a bench-friendly
// scale, plus per-algorithm join microbenchmarks. Run everything with
//
//	go test -bench=. -benchmem
//
// and regenerate any experiment's full printed series with
//
//	go run ./cmd/iawjbench -exp fig9 [-scale 0.1 -window 1000]
//
// The per-iteration custom metrics (tuples/ms, matches) make regressions
// visible without reading the printed tables.

import (
	"io"
	"testing"

	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/radix"
)

// benchOpts shrinks the experiments so a full -bench=. pass stays fast;
// the shapes (who wins, where crossovers fall) are preserved by keeping
// the paper's rate axes and only scaling windows/sizes.
func benchOpts() exp.Options {
	return exp.Options{
		W:             io.Discard,
		Threads:       2,
		Scale:         0.002,
		MicroWindowMs: 3,
		Seed:          42,
	}
}

func BenchmarkTable3WorkloadStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Table3(benchOpts())
	}
}

func BenchmarkTable5CountersPerTuple(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Table5(benchOpts())
	}
}

func BenchmarkTable6ResourceUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Table6(benchOpts())
	}
}

func BenchmarkFigure3TimeDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure3(benchOpts())
	}
}

func BenchmarkFigure4DecisionTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure4(benchOpts())
	}
}

func BenchmarkFigure5ThroughputLatency(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		rows := exp.Figure5(benchOpts())
		tput = rows[len(rows)-1].Result.ThroughputTPM
	}
	b.ReportMetric(tput, "tuples/ms")
}

func BenchmarkFigure6Progressiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure6(benchOpts())
	}
}

func BenchmarkFigure7Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure7(benchOpts())
	}
}

func BenchmarkFigure8CacheProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure8(benchOpts())
	}
}

func BenchmarkFigure9ArrivalRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure9(benchOpts())
	}
}

func BenchmarkFigure10RelativeRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure10(benchOpts())
	}
}

func BenchmarkFigure11KeyDuplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure11(benchOpts())
	}
}

func BenchmarkFigure12ArrivalSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure12(benchOpts())
	}
}

func BenchmarkFigure13KeySkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure13(benchOpts())
	}
}

func BenchmarkFigure14WindowLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure14(benchOpts())
	}
}

func BenchmarkFigure15SortStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure15(benchOpts())
	}
}

func BenchmarkFigure16GroupSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure16(benchOpts())
	}
}

func BenchmarkFigure17PhysicalPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure17(benchOpts())
	}
}

func BenchmarkFigure18RadixBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure18(benchOpts())
	}
}

func BenchmarkFigure19aTopDown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure19a(benchOpts())
	}
}

func BenchmarkFigure19bMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure19b(benchOpts())
	}
}

func BenchmarkFigure20Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Figure20(benchOpts())
	}
}

func BenchmarkFigure21SIMD(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows := exp.Figure21(benchOpts())
		speedup = rows[0].Speedup
	}
	b.ReportMetric(speedup, "simd-speedup")
}

// BenchmarkJoin measures raw static-join throughput of every studied
// algorithm on a shared workload (the per-algorithm microbenchmark the
// experiment tables build on).
func BenchmarkJoin(b *testing.B) {
	w := MicroStatic(50_000, 50_000, 8, 0, 42)
	for _, algo := range Algorithms() {
		b.Run(algo, func(b *testing.B) {
			var matches int64
			for i := 0; i < b.N; i++ {
				res, err := Join(w.R, w.S, Config{
					Algorithm: algo, Threads: 2, AtRest: true, SIMD: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				matches = res.Matches
			}
			b.SetBytes(int64(len(w.R)+len(w.S)) * 16)
			b.ReportMetric(float64(matches), "matches")
		})
	}
}

// BenchmarkHandshakeBaseline quantifies the related-work validation: the
// handshake join's per-tuple pipeline hops cost orders of magnitude of
// throughput next to BenchmarkJoin.
func BenchmarkHandshakeBaseline(b *testing.B) {
	w := MicroStatic(2_000, 2_000, 8, 0, 42)
	for i := 0; i < b.N; i++ {
		if _, err := Join(w.R, w.S, Config{Algorithm: "HANDSHAKE", Threads: 2, AtRest: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(w.R)+len(w.S)) * 16)
}

// BenchmarkAblationNPJTable compares the shared-table synchronization
// designs: per-bucket latches (the paper's NPJ) against a CAS-based
// lock-free chain (NPJ_LF).
func BenchmarkAblationNPJTable(b *testing.B) {
	w := MicroStatic(100_000, 100_000, 32, 0, 42) // high dupe: contended buckets
	for _, algo := range []string{"NPJ", "NPJ_LF"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Join(w.R, w.S, Config{Algorithm: algo, Threads: 2, AtRest: true}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(w.R)+len(w.S)) * 16)
		})
	}
}

// BenchmarkAblationPMJSpill compares PMJ's modernized in-memory runs with
// the original disk-spilled runs.
func BenchmarkAblationPMJSpill(b *testing.B) {
	w := MicroStatic(50_000, 50_000, 8, 0, 42)
	dir := b.TempDir()
	for _, cfg := range []struct {
		name  string
		spill string
	}{{"memory", ""}, {"disk", dir}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Join(w.R, w.S, Config{
					Algorithm: "PMJ_JM", Threads: 2, AtRest: true,
					SortStepFrac: 0.1, SpillDir: cfg.spill,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(w.R)+len(w.S)) * 16)
		})
	}
}

// BenchmarkAblationRadixPasses compares single-pass radix partitioning
// against the TLB-friendly multi-pass scheme at a large bit budget.
func BenchmarkAblationRadixPasses(b *testing.B) {
	w := MicroStatic(200_000, 1, 1, 0, 42)
	for _, bits := range []int{14} {
		b.Run("single", func(b *testing.B) {
			b.SetBytes(int64(len(w.R)) * 16)
			for i := 0; i < b.N; i++ {
				radix.Partition(w.R, bits, nil, 0)
			}
		})
		b.Run("multi", func(b *testing.B) {
			b.SetBytes(int64(len(w.R)) * 16)
			for i := 0; i < b.N; i++ {
				radix.PartitionMultiPass(w.R, bits, nil, 0)
			}
		})
	}
}

// BenchmarkRelatedHandshake regenerates the Section 6 related-work
// validation at bench scale.
func BenchmarkRelatedHandshake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Related(benchOpts())
	}
}

// BenchmarkWorkloadGeneration tracks the generator costs so experiment
// setup stays cheap relative to the joins being measured.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, name := range WorkloadNames() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := WorkloadByName(name, gen.Scale(0.002), 42); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("Micro", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Micro(MicroConfig{RateR: 1000, RateS: 1000, WindowMs: 10, Dupe: 4, Seed: 42})
		}
	})
}
