// Package iawj is a Go reproduction of "Parallelizing Intra-Window Join on
// Multicores: An Experimental Study" (SIGMOD 2021).
//
// The intra-window join (IaWJ) joins two input streams over a single
// window. This package exposes the study's eight algorithms behind one
// API — four lazy relational joins (NPJ, PRJ, MWAY, MPASS) and four eager
// stream joins (SHJ/PMJ crossed with the JM/JB distribution schemes) —
// together with the paper's workload generators, performance metrics
// (throughput, quantile latency, progressiveness), and the Figure 4
// decision tree for choosing an algorithm.
//
// Quick start:
//
//	w := iawj.Micro(iawj.MicroConfig{RateR: 1600, RateS: 1600, WindowMs: 1000})
//	res, err := iawj.Join(w.R, w.S, iawj.Config{Algorithm: "SHJ_JM", Threads: 4})
//
// See examples/ for complete programs.
package iawj

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cachesim"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/lazy"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/trace"
	"repro/internal/tuple"
)

// Tuple is one stream element {ts, key, payload}; see Definition 1.
type Tuple = tuple.Tuple

// Relation is a chronologically ordered list of tuples from one stream.
type Relation = tuple.Relation

// JoinResult is one output tuple; see Definition 2.
type JoinResult = tuple.JoinResult

// Result carries the merged metrics of one run: match count, throughput,
// latency quantiles, the progressiveness curve, the six-phase breakdown,
// and the memory timeline.
type Result = metrics.Result

// Config selects and tunes an algorithm for Join.
type Config struct {
	// Algorithm names one of Algorithms(): NPJ, PRJ, MWAY, MPASS,
	// SHJ_JM, SHJ_JB, PMJ_JM, PMJ_JB (or HANDSHAKE for the baseline).
	Algorithm string
	// Threads is the worker count; 0 uses GOMAXPROCS.
	Threads int
	// WindowMs is the window length w; 0 derives it from the inputs.
	WindowMs int64
	// NsPerSimMs scales simulated time (real nanoseconds per simulated
	// millisecond); 0 selects the default compression. Ignored with
	// AtRest.
	NsPerSimMs float64
	// AtRest disables arrival simulation: the whole input is available
	// instantly (static datasets).
	AtRest bool

	// Algorithm knobs of Section 5.5.
	RadixBits         int     // PRJ #r (default 10)
	SortStepFrac      float64 // PMJ δ (default 0.2)
	GroupSize         int     // JB g (default 1)
	PhysicalPartition bool    // eager value-vs-pointer passing
	SIMD              bool    // vectorized-substitute sort kernels
	BatchSize         int     // eager pull batch (default 64)
	SpillDir          string  // PMJ disk-spill directory ("" = in-memory runs)

	// Objective guides the ADAPTIVE dispatcher (see AdaptiveName); it is
	// ignored by the concrete algorithms.
	Objective Objective

	// Emit receives materialized join results; nil counts matches only.
	// Emit may be called concurrently from worker goroutines.
	Emit func(JoinResult)

	// Tracer feeds a cache simulation during profile runs; use
	// NewCacheSim. Profile runs should use Threads: 1.
	Tracer Tracer

	// Trace records per-worker phase spans into the recorder (see
	// NewTraceRecorder and OBSERVABILITY.md); nil disables tracing at
	// zero cost.
	Trace *TraceRecorder

	// Pool recycles per-window kernel state (hash tables, partitioner
	// scratch, match buffers) across joins sharing the pool. Create one
	// with NewStatePool and reuse it across the windows of a stream;
	// steady-state windows then run with zero kernel allocations
	// (PERFORMANCE.md). Nil allocates fresh state per join.
	Pool *StatePool

	// WrapClock, when non-nil, wraps the run's virtual time source
	// before any worker reads it. The conformance harness uses it to
	// inject deterministic schedule perturbation (clock.Perturb); see
	// TESTING.md. Most callers leave it nil.
	WrapClock func(ClockSource) ClockSource

	// Journal, when non-nil, receives the per-window run ledger: the
	// JoinWindowed* drivers append one iawj-journal/v2 window record per
	// completed window (OBSERVABILITY.md). Single-window Join calls
	// ignore it — their callers write run records directly.
	Journal *JournalWriter

	// Window tags this run with its windowed-sweep identity; the
	// JoinWindowed* drivers set it per window, other callers leave it
	// zero. The tag is stamped into Result.WindowID/WindowStartMs/
	// WindowEndMs.
	Window WindowTag
}

// WindowTag identifies the source window of a windowed-sweep run; see
// Config.Window.
type WindowTag = core.WindowTag

// JournalWriter appends iawj-journal/v2 JSONL records; see
// NewJournalWriter, Config.Journal, and OBSERVABILITY.md.
type JournalWriter = trace.JournalWriter

// NewJournalWriter wraps w in a concurrency-safe journal writer; each
// record is one JSON line.
func NewJournalWriter(w io.Writer) *JournalWriter { return trace.NewJournalWriter(w) }

// ClockSource is the virtual time source algorithms run against; see
// internal/clock and Config.WrapClock.
type ClockSource = clock.Source

// StatePool is the reusable per-window kernel state arena; see
// NewStatePool and PERFORMANCE.md. A StatePool is safe for concurrent use
// by the workers of one join and by concurrent joins.
type StatePool = pool.Pool

// NewStatePool returns an empty state pool for Config.Pool.
func NewStatePool() *StatePool { return pool.New() }

// TraceRecorder is the per-worker phase-span recorder; see NewTraceRecorder.
type TraceRecorder = trace.Recorder

// NewTraceRecorder prepares a span recorder for up to workers threads with
// spansPerWorker ring slots each (<= 0 selects the default capacity). Pass
// it as Config.Trace, then export with trace.WriteChrome or inspect
// Snapshot directly.
func NewTraceRecorder(workers, spansPerWorker int) *TraceRecorder {
	return trace.NewRecorder(workers, spansPerWorker)
}

// Tracer is the cache-simulation hook; see NewCacheSim.
type Tracer = cachesim.Tracer

// NewCacheSim returns a simulated three-level cache hierarchy shaped like
// the paper's evaluation platform, usable as Config.Tracer.
func NewCacheSim() *cachesim.Hierarchy {
	return cachesim.New(cachesim.DefaultConfig())
}

// NewAlgorithm instantiates a studied algorithm by its paper name.
func NewAlgorithm(name string) (core.Algorithm, error) {
	switch name {
	case "NPJ":
		return lazy.NPJ{}, nil
	case "NPJ_LF":
		// Ablation variant: CAS-based shared table instead of latches.
		return lazy.NPJ{LockFree: true}, nil
	case "PRJ":
		return lazy.PRJ{}, nil
	case "MWAY", "MWay":
		return lazy.MWay{}, nil
	case "MPASS", "MPass":
		return lazy.MPass{}, nil
	case "SHJ_JM":
		return eager.SHJ{JB: false}, nil
	case "SHJ_JB":
		return eager.SHJ{JB: true}, nil
	case "PMJ_JM":
		return eager.PMJ{JB: false}, nil
	case "PMJ_JB":
		return eager.PMJ{JB: true}, nil
	case "HANDSHAKE":
		return eager.Handshake{}, nil
	}
	return nil, fmt.Errorf("iawj: unknown algorithm %q (want one of %v)", name, Algorithms())
}

// Algorithms lists the eight studied algorithms in the paper's Table 2
// order.
func Algorithms() []string {
	return []string{"NPJ", "PRJ", "MWAY", "MPASS", "SHJ_JM", "SHJ_JB", "PMJ_JM", "PMJ_JB"}
}

// LazyAlgorithms lists the lazy subset.
func LazyAlgorithms() []string { return []string{"NPJ", "PRJ", "MWAY", "MPASS"} }

// EagerAlgorithms lists the eager subset.
func EagerAlgorithms() []string { return []string{"SHJ_JM", "SHJ_JB", "PMJ_JM", "PMJ_JB"} }

// Join runs the configured intra-window join over one window of r and s
// and returns the merged metrics. With Algorithm set to AdaptiveName the
// workload is profiled first and the decision tree picks the concrete
// algorithm (reported in Result.Algorithm).
func Join(r, s Relation, cfg Config) (Result, error) {
	if cfg.Algorithm == AdaptiveName {
		cfg.Algorithm, _ = resolveAdaptive(r, s, cfg)
	}
	alg, err := NewAlgorithm(cfg.Algorithm)
	if err != nil {
		return Result{}, err
	}
	windowMs := cfg.WindowMs
	if windowMs <= 0 && !cfg.AtRest {
		windowMs = r.MaxTS()
		if m := s.MaxTS(); m > windowMs {
			windowMs = m
		}
	}
	return core.Run(alg, r, s, windowMs, core.RunConfig{
		Threads:    cfg.Threads,
		NsPerSimMs: cfg.NsPerSimMs,
		AtRest:     cfg.AtRest,
		Knobs: core.Knobs{
			RadixBits:         cfg.RadixBits,
			SortStepFrac:      cfg.SortStepFrac,
			GroupSize:         cfg.GroupSize,
			PhysicalPartition: cfg.PhysicalPartition,
			SIMD:              cfg.SIMD,
			BatchSize:         cfg.BatchSize,
			SpillDir:          cfg.SpillDir,
		},
		Tracer:    cfg.Tracer,
		Trace:     cfg.Trace,
		Emit:      cfg.Emit,
		Pool:      cfg.Pool,
		WrapClock: cfg.WrapClock,
		Window:    cfg.Window,
	})
}

// ExpectedMatches computes the exact number of intra-window join matches
// by key-frequency multiplication — the ground truth the test suite checks
// every algorithm against.
func ExpectedMatches(r, s Relation) int64 {
	freq := make(map[int32]int64, len(r))
	for _, t := range r {
		freq[t.Key]++
	}
	var total int64
	for _, t := range s {
		total += freq[t.Key]
	}
	return total
}

// CollectResults is a convenience Emit sink that materializes all join
// results; use only when the expected match count is manageable.
type CollectResults struct {
	mu  chan struct{}
	out []JoinResult
}

// NewCollectResults returns an empty concurrent-safe result collector.
func NewCollectResults() *CollectResults {
	c := &CollectResults{mu: make(chan struct{}, 1)}
	c.mu <- struct{}{}
	return c
}

// Emit implements the Config.Emit contract.
func (c *CollectResults) Emit(jr JoinResult) {
	<-c.mu
	c.out = append(c.out, jr)
	c.mu <- struct{}{}
}

// Results returns the collected join output sorted by (key, ts) for
// deterministic comparison.
func (c *CollectResults) Results() []JoinResult {
	<-c.mu
	out := append([]JoinResult(nil), c.out...)
	c.mu <- struct{}{}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].PayloadR != out[j].PayloadR {
			return out[i].PayloadR < out[j].PayloadR
		}
		return out[i].PayloadS < out[j].PayloadS
	})
	return out
}
