package iawj

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/trace"
)

// requiredPhases lists the phase names every trace of the given algorithm
// must contain: the per-worker spans must cover each phase the algorithm
// actually executes (Figure 7's non-zero columns).
var requiredPhases = map[string][]string{
	"NPJ":    {"wait", "build/sort", "probe"},
	"PRJ":    {"wait", "partition", "build/sort", "probe"},
	"MWAY":   {"wait", "partition", "build/sort", "merge", "probe"},
	"MPASS":  {"wait", "partition", "build/sort", "merge", "probe"},
	"SHJ_JM": {"partition", "build/sort", "probe"},
	"SHJ_JB": {"partition", "build/sort", "probe"},
	"PMJ_JM": {"partition", "build/sort", "merge", "probe"},
	"PMJ_JB": {"partition", "build/sort", "merge", "probe"},
}

// TestTraceCoversAllAlgorithms is the tentpole's acceptance check: joining
// with a recorder must produce Perfetto-loadable Chrome trace JSON whose
// per-worker spans cover every phase each of the eight algorithms runs.
func TestTraceCoversAllAlgorithms(t *testing.T) {
	w := smallWorkload(t)
	const threads = 2
	rec := NewTraceRecorder(threads, 0)

	for _, name := range allAlgorithms {
		if _, err := Join(w.R, w.S, Config{
			Algorithm:  name,
			Threads:    threads,
			WindowMs:   w.WindowMs,
			NsPerSimMs: 1000,
			Trace:      rec,
		}); err != nil {
			t.Fatalf("Join(%s): %v", name, err)
		}
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, rec); err != nil {
		t.Fatal(err)
	}
	ct, err := trace.ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("trace contains no events")
	}

	phasesByAlg := map[string]map[string]bool{}
	tidsByAlg := map[string]map[int]bool{}
	for i, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %d: ph = %q, want complete event X", i, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %d: negative ts/dur: %+v", i, ev)
		}
		if ev.TID < 0 || ev.TID >= threads {
			t.Fatalf("event %d: tid = %d, want [0,%d)", i, ev.TID, threads)
		}
		if ev.Name != ev.Args.Phase {
			t.Fatalf("event %d: name %q != args.phase %q", i, ev.Name, ev.Args.Phase)
		}
		alg := ev.Args.Algorithm
		if phasesByAlg[alg] == nil {
			phasesByAlg[alg] = map[string]bool{}
			tidsByAlg[alg] = map[int]bool{}
		}
		phasesByAlg[alg][ev.Name] = true
		tidsByAlg[alg][ev.TID] = true
	}

	for _, name := range allAlgorithms {
		got := phasesByAlg[name]
		if got == nil {
			t.Errorf("%s: no spans recorded", name)
			continue
		}
		for _, p := range requiredPhases[name] {
			if !got[p] {
				t.Errorf("%s: missing %q spans (have %v)", name, p, keys(got))
			}
		}
		// Every worker must have recorded spans: the trace is per-worker.
		if len(tidsByAlg[name]) != threads {
			t.Errorf("%s: spans from %d workers, want %d", name, len(tidsByAlg[name]), threads)
		}
	}
}

// TestTraceDisabledIsFree proves disabled tracing stays off the hot path:
// a Join without a recorder behaves identically and the nil handles do not
// allocate (the per-span guarantee lives in internal/trace's
// AllocsPerRun tests).
func TestTraceDisabledIsFree(t *testing.T) {
	w := smallWorkload(t)
	want := ExpectedMatches(w.R, w.S)
	res, err := Join(w.R, w.S, Config{
		Algorithm:  "SHJ_JM",
		Threads:    2,
		WindowMs:   w.WindowMs,
		NsPerSimMs: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Fatalf("matches = %d, want %d", res.Matches, want)
	}
}

// TestTraceRecorderReuseAcrossRuns checks the sweep use case: one recorder
// tagged per run, correctness unaffected.
func TestTraceRecorderReuseAcrossRuns(t *testing.T) {
	w := smallWorkload(t)
	want := ExpectedMatches(w.R, w.S)
	rec := NewTraceRecorder(2, 0)
	for i, name := range []string{"NPJ", "NPJ", "PRJ"} {
		res, err := Join(w.R, w.S, Config{
			Algorithm:  name,
			Threads:    2,
			WindowMs:   w.WindowMs,
			NsPerSimMs: 1000,
			Trace:      rec,
		})
		if err != nil {
			t.Fatalf("run %d (%s): %v", i, name, err)
		}
		if res.Matches != want {
			t.Fatalf("run %d (%s): matches = %d, want %d", i, name, res.Matches, want)
		}
	}
	algs := rec.Algorithms()
	if fmt.Sprint(algs) != "[? NPJ PRJ]" {
		t.Errorf("Algorithms = %v, want [? NPJ PRJ]", algs)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
