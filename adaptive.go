package iawj

// The paper's conclusion names the development of "an adaptive IaWJ
// algorithm that considers all the factors including workload, metrics
// and hardware" as future work (i). This file implements that extension:
// a pseudo-algorithm "ADAPTIVE" that profiles the pending window, walks
// the Figure 4 decision tree, and dispatches to the recommended studied
// algorithm.

import "runtime"

// AdaptiveName selects the self-tuning dispatcher in Config.Algorithm.
const AdaptiveName = "ADAPTIVE"

// adaptiveSample bounds the profiling cost: only a prefix of each stream
// is summarized before dispatch, mirroring how a streaming system would
// profile the first arrivals of a window.
const adaptiveSample = 4096

// resolveAdaptive profiles the inputs and returns the concrete algorithm
// the decision tree recommends, along with the advice for explainability.
func resolveAdaptive(r, s Relation, cfg Config) (string, Advice) {
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	rs := Summarize(prefix(r, adaptiveSample))
	ss := Summarize(prefix(s, adaptiveSample))
	p := Profile{
		Dupe:      minF(rs.Dupe, ss.Dupe),
		KeySkew:   maxF(rs.KeySkew, ss.KeySkew),
		Tuples:    len(r) + len(s),
		Cores:     threads,
		Objective: cfg.Objective,
	}
	if cfg.AtRest {
		p.RateR, p.RateS = RateInfinite, RateInfinite
	} else {
		// Rates estimated over the full relation spans: a prefix of a
		// uniform stream underestimates the span, so derive rates from
		// tuple counts over the window instead.
		window := cfg.WindowMs
		if window <= 0 {
			window = r.MaxTS()
			if m := s.MaxTS(); m > window {
				window = m
			}
		}
		if window < 1 {
			window = 1
		}
		p.RateR = float64(len(r)) / float64(window)
		p.RateS = float64(len(s)) / float64(window)
		if len(r) > 1 && r.MaxTS() == 0 {
			p.RateR = RateInfinite
		}
		if len(s) > 1 && s.MaxTS() == 0 {
			p.RateS = RateInfinite
		}
	}
	adv := Advise(p)
	return adv.Algorithm, adv
}

func prefix(rel Relation, n int) Relation {
	if len(rel) <= n {
		return rel
	}
	return rel[:n]
}
