package iawj

import "testing"

func TestAdaptiveCorrectness(t *testing.T) {
	// Whatever the tree picks, the adaptive dispatcher must compute the
	// exact join.
	w := MicroStatic(5000, 5000, 8, 0.3, 19)
	want := ExpectedMatches(w.R, w.S)
	res, err := Join(w.R, w.S, Config{Algorithm: AdaptiveName, Threads: 3, AtRest: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Fatalf("matches = %d, want %d", res.Matches, want)
	}
	// The result must report the concrete algorithm it dispatched to.
	if res.Algorithm == AdaptiveName || res.Algorithm == "" {
		t.Fatalf("result must name the dispatched algorithm, got %q", res.Algorithm)
	}
}

func TestAdaptiveDispatchesByWorkload(t *testing.T) {
	// Static high-duplication data (DEBS-like) must land on a lazy
	// sort-based algorithm.
	highDupe := MicroStatic(60000, 60000, 200, 0, 23)
	name, adv := resolveAdaptive(highDupe.R, highDupe.S, Config{AtRest: true, Threads: 8})
	if name != "MPASS" && name != "MWAY" {
		t.Fatalf("static high-dupe must dispatch to a sort join, got %s (%v)", name, adv.Path)
	}

	// A trickling stream must land on SHJ_JM.
	slow := Micro(MicroConfig{RateR: 50, RateS: 50, WindowMs: 100, Seed: 2})
	name, adv = resolveAdaptive(slow.R, slow.S, Config{WindowMs: 100, Threads: 8})
	if name != "SHJ_JM" {
		t.Fatalf("low-rate stream must dispatch to SHJ_JM, got %s (%v)", name, adv.Path)
	}
}

func TestAdaptiveStreaming(t *testing.T) {
	w := Micro(MicroConfig{RateR: 100, RateS: 100, WindowMs: 50, Dupe: 4, Seed: 29})
	want := ExpectedMatches(w.R, w.S)
	res, err := Join(w.R, w.S, Config{
		Algorithm:  AdaptiveName,
		Threads:    2,
		WindowMs:   w.WindowMs,
		NsPerSimMs: 2000,
		Objective:  OptLatency,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Fatalf("matches = %d, want %d", res.Matches, want)
	}
}

func TestAdaptiveEmptyInputs(t *testing.T) {
	res, err := Join(nil, nil, Config{Algorithm: AdaptiveName, AtRest: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 0 {
		t.Fatalf("matches = %d", res.Matches)
	}
}
