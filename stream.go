package iawj

// This file is the inter-window driver built on IaWJ as the building
// block — the direction the paper explicitly points at ("designing
// efficient inter-window join algorithms by taking IaWJ as a building
// block is an exciting topic"). The driver slices two unbounded streams
// into aligned windows (tumbling, sliding, or session) and runs the
// configured intra-window join per window pair.

import (
	"fmt"
	"sync"

	"repro/internal/window"
)

// WindowKind enumerates the window types of Definition 1.
type WindowKind = window.Kind

// The supported window kinds.
const (
	Tumbling = window.Tumbling
	Sliding  = window.Sliding
	Session  = window.Session
)

// WindowSpec describes how streams are sliced into windows.
type WindowSpec = window.Spec

// WindowResult is the outcome of one window's intra-window join.
type WindowResult struct {
	Start, End int64
	Result     Result
}

// JoinWindowed slices r and s with the spec, aligns the windows of both
// streams, and runs the configured IaWJ per window pair. Windows with
// input on only one side produce zero matches without running a join.
// Timestamps inside each window are rebased to the window start so the
// arrival simulation of each join replays that window in isolation.
//
// Successive windows are exactly the state-reuse pattern the window pool
// exists for, so when cfg.Pool is nil the driver creates one shared by
// all windows of this call; pass your own pool to share state across
// calls too.
//
// When cfg.Journal is non-nil, every window that runs a join appends one
// iawj-journal/v2 window record (windows with input on only one side are
// skipped — they have no run to summarize).
func JoinWindowed(r, s Relation, spec WindowSpec, cfg Config) ([]WindowResult, error) {
	pairs, err := window.AssignPair(r, s, spec)
	if err != nil {
		return nil, err
	}
	if cfg.Pool == nil {
		cfg.Pool = NewStatePool()
	}
	out := make([]WindowResult, len(pairs))
	for i, p := range pairs {
		out[i] = WindowResult{Start: p.Window.Start, End: p.Window.End}
		if len(p.R) == 0 || len(p.S) == 0 {
			continue
		}
		wcfg := cfg
		wcfg.WindowMs = p.Window.Length()
		wcfg.Window = WindowTag{ID: i, StartMs: p.Window.Start, EndMs: p.Window.End}
		res, err := Join(rebase(p.R, p.Window.Start), rebase(p.S, p.Window.Start), wcfg)
		if err != nil {
			return out[:i], fmt.Errorf("window [%d,%d): %w", p.Window.Start, p.Window.End, err)
		}
		out[i].Result = res
		if err := cfg.Journal.WriteWindow(res, i, p.Window.Start, p.Window.End); err != nil {
			return out[:i+1], fmt.Errorf("window [%d,%d): journal: %w", p.Window.Start, p.Window.End, err)
		}
	}
	return out, nil
}

// JoinWindowedParallel is JoinWindowed with up to workers window pairs
// in flight concurrently — the replay pattern for recorded (at rest)
// streams where window order does not gate arrival. Each window's join
// still uses cfg.Threads workers internally, so the effective parallelism
// is workers × cfg.Threads; choose the split to fit the machine.
func JoinWindowedParallel(r, s Relation, spec WindowSpec, cfg Config, workers int) ([]WindowResult, error) {
	if workers <= 1 {
		return JoinWindowed(r, s, spec, cfg)
	}
	pairs, err := window.AssignPair(r, s, spec)
	if err != nil {
		return nil, err
	}
	if cfg.Pool == nil {
		// One pool shared by all in-flight windows: the pool is
		// concurrency-safe and a window's released state seeds the next.
		cfg.Pool = NewStatePool()
	}
	out := make([]WindowResult, len(pairs))
	errs := make([]error, len(pairs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, p := range pairs {
		out[i] = WindowResult{Start: p.Window.Start, End: p.Window.End}
		if len(p.R) == 0 || len(p.S) == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p window.Pair) {
			defer func() { <-sem; wg.Done() }()
			wcfg := cfg
			wcfg.WindowMs = p.Window.Length()
			wcfg.Window = WindowTag{ID: i, StartMs: p.Window.Start, EndMs: p.Window.End}
			res, err := Join(rebase(p.R, p.Window.Start), rebase(p.S, p.Window.Start), wcfg)
			if err != nil {
				errs[i] = fmt.Errorf("window [%d,%d): %w", p.Window.Start, p.Window.End, err)
				return
			}
			out[i].Result = res
			// The journal writer serializes internally; window records of
			// in-flight windows may interleave out of order but carry ids.
			if err := cfg.Journal.WriteWindow(res, i, p.Window.Start, p.Window.End); err != nil {
				errs[i] = fmt.Errorf("window [%d,%d): journal: %w", p.Window.Start, p.Window.End, err)
			}
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// rebase shifts timestamps so the window starts at zero; a copy keeps the
// caller's stream untouched.
func rebase(rel Relation, start int64) Relation {
	if start == 0 {
		return rel
	}
	out := rel.Clone()
	for i := range out {
		out[i].TS -= start
	}
	return out
}

// TotalMatches sums the matches over a windowed join's results.
func TotalMatches(results []WindowResult) int64 {
	var n int64
	for _, r := range results {
		n += r.Result.Matches
	}
	return n
}
