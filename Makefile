# Makefile — entry points for the CI gate and its individual stages.
# `make check` is the whole gate (scripts/check.sh); the other targets run
# one stage each for fast local iteration. See LINTING.md for the lint
# rules and escape hatches.

GO ?= go
FUZZTIME ?= 5s

.PHONY: check build test lint lint-json lint-sarif lint-race escapegate bcegate inlinegate lint-gates race trace-smoke bench bench-kernels bench-smoke bench-gate fuzz-smoke conform conform-full report-smoke load-smoke fmt

## check: run the full CI gate (fmt, vet, build, lint, test, race, fuzz)
check:
	FUZZTIME=$(FUZZTIME) ./scripts/check.sh

## build: compile every package
build:
	$(GO) build ./...

## test: tier-1 verify
test:
	$(GO) test ./...

## lint: repo-specific static analysis (cmd/iawjlint)
lint:
	$(GO) run ./cmd/iawjlint ./...

## lint-json: machine-readable findings — SARIF to lint.sarif, JSON to stdout
lint-json:
	$(GO) run ./cmd/iawjlint -sarif ./... > lint.sarif
	$(GO) run ./cmd/iawjlint -json ./...

## lint-sarif: SARIF 2.1.0 findings on stdout (for code-scanning upload)
lint-sarif:
	$(GO) run ./cmd/iawjlint -sarif ./...

## lint-race: only the whole-program race rules (guardinfer, atomicmix, goescape)
lint-race:
	$(GO) run ./cmd/iawjlint -rules guardinfer,atomicmix,goescape ./...

## escapegate: only the escape-analysis stage of the lint gate
escapegate:
	$(GO) run ./cmd/iawjlint -rules escapegate ./...

## bcegate: only the bounds-check-elimination gate (-d=ssa/check_bce verdicts)
bcegate:
	$(GO) run ./cmd/iawjlint -rules bcegate ./...

## inlinegate: only the //iawj:inline budget gate (-m=2 inliner verdicts)
inlinegate:
	$(GO) run ./cmd/iawjlint -rules inlinegate ./...

## lint-gates: all three build-diagnostics gates off one shared -gcflags build
lint-gates:
	$(GO) run ./cmd/iawjlint -rules escapegate,bcegate,inlinegate ./...

## race: full test suite under the race detector
race:
	$(GO) test -race ./...

## trace-smoke: tiny benchmark with -trace, validate spans for every phase
trace-smoke:
	$(GO) run ./cmd/iawjbench -exp fig7 -scale 0.01 -spancap 65536 -trace /tmp/iawj-trace-smoke.json >/dev/null
	$(GO) run ./cmd/iawjtrace -q -want "wait,partition,build/sort,merge,probe,others" /tmp/iawj-trace-smoke.json
	rm -f /tmp/iawj-trace-smoke.json

## bench: short per-algorithm benchmark sweep, writes BENCH_2.json
bench:
	./scripts/bench.sh

## bench-kernels: kernel-layer sweep (partition/partition_build/build/probe),
## writes BENCH_3.json; 300 iterations per variant for recordable numbers
bench-kernels:
	BENCHTIME=$${BENCHTIME:-300x} ./scripts/bench.sh kernels

## bench-smoke: every kernel microbenchmark once, under the race detector
bench-smoke:
	$(GO) test -race -run '^$$' -bench '^BenchmarkKernel' -benchtime=1x ./internal/radix ./internal/hashtable

## bench-gate: kernel sweep vs recorded BENCH_3.json, exit 1 on >10% regression
bench-gate:
	./scripts/bench.sh -compare BENCH_3.json

## fuzz-smoke: short fuzz run on the gen/ingest parsers + conformance
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzReadCSV$$' -fuzztime=$(FUZZTIME) ./internal/gen
	$(GO) test -run='^$$' -fuzz='^FuzzReadStream$$' -fuzztime=$(FUZZTIME) ./internal/ingest
	$(GO) test -run='^$$' -fuzz='^FuzzReadBinary$$' -fuzztime=$(FUZZTIME) ./internal/ingest
	$(GO) test -run='^$$' -fuzz='^FuzzConformance$$' -fuzztime=$(FUZZTIME) ./internal/oracle

## conform: conformance smoke matrix under the race detector (see TESTING.md)
conform:
	$(GO) run -race ./cmd/iawjconform -smoke

## conform-full: the full differential + metamorphic conformance sweep
conform-full:
	$(GO) run ./cmd/iawjconform

## report-smoke: windowed two-algorithm sweep -> journal -> iawjreport self-compare
report-smoke:
	rm -f /tmp/iawj-report-smoke.jsonl
	$(GO) run ./cmd/iawjjoin -workload Stock -scale 0.002 -atrest -algorithm NPJ -windowms 50 -journal /tmp/iawj-report-smoke.jsonl >/dev/null
	$(GO) run ./cmd/iawjjoin -workload Stock -scale 0.002 -atrest -algorithm SHJ_JM -windowms 50 -journal /tmp/iawj-report-smoke.jsonl >/dev/null
	$(GO) run ./cmd/iawjreport -self /tmp/iawj-report-smoke.jsonl
	rm -f /tmp/iawj-report-smoke.jsonl

## load-smoke: validate every checked-in workload spec, then a short
## open-loop run of the mixed spec with per-class journal records
load-smoke:
	for spec in examples/specs/*.json; do \
		$(GO) run ./cmd/iawjload -spec $$spec -validate >/dev/null || exit 1; \
	done
	rm -f /tmp/iawj-load-smoke.jsonl
	$(GO) run ./cmd/iawjload -spec examples/specs/mixed.json -nspms 1000000 -algorithm SHJ_JM -journal /tmp/iawj-load-smoke.jsonl >/dev/null
	$(GO) run ./cmd/iawjreport -self /tmp/iawj-load-smoke.jsonl
	rm -f /tmp/iawj-load-smoke.jsonl

## fmt: apply gofmt to the tree
fmt:
	gofmt -w .
